// Command datagen generates the paper's synthetic datasets (Section III) as
// text files on the local file system, in the formats sparkscore consumes:
//
//	datagen -patients 1000 -snps 100000 -sets 1000 -out ./dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

func main() {
	var (
		patients = flag.Int("patients", 1000, "number of patients (n)")
		snps     = flag.Int("snps", 10000, "number of SNPs (m)")
		sets     = flag.Int("sets", 100, "number of SNP-sets (K)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", "dataset", "output directory")
		minMAF   = flag.Float64("min-maf", 0.01, "minimum relative allelic frequency")
		maxMAF   = flag.Float64("max-maf", 0.5, "maximum relative allelic frequency")
		events   = flag.Float64("event-rate", 0.85, "Bernoulli event rate")
		survival = flag.Float64("mean-survival", 12, "mean exponential survival time")
		scheme   = flag.String("weight-scheme", "flat", `SKAT weights: "flat" (all 1) or "beta" (Beta(MAF;a,b))`)
		betaA    = flag.Float64("beta-a", 1, "Beta weight shape a (with -weight-scheme beta)")
		betaB    = flag.Float64("beta-b", 25, "Beta weight shape b (with -weight-scheme beta)")
		withCov  = flag.Bool("covariates", false, "also generate a baseline covariates file (age, sex)")
	)
	flag.Parse()

	cfg := gen.Config{
		Patients: *patients, SNPs: *snps, SNPSets: *sets,
		MinMAF: *minMAF, MaxMAF: *maxMAF,
		EventRate: *events, MeanSurvival: *survival,
	}
	ds, err := gen.Generate(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	switch *scheme {
	case "flat":
	case "beta":
		if ds.Weights, err = stats.BetaMAFWeights(ds.Genotypes, *betaA, *betaB); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown weight scheme %q", *scheme))
	}
	if *withCov {
		ds.Covariates = gen.Covariates(cfg, rng.New(*seed^0xc0))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	files := []struct {
		name  string
		write func(f *os.File) error
	}{
		{"genotypes.txt", func(f *os.File) error { return data.WriteGenotypes(f, ds.Genotypes) }},
		{"phenotype.txt", func(f *os.File) error { return data.WritePhenotype(f, ds.Phenotype) }},
		{"weights.txt", func(f *os.File) error { return data.WriteWeights(f, ds.Weights) }},
		{"snpsets.txt", func(f *os.File) error { return data.WriteSNPSets(f, ds.SNPSets) }},
	}
	if ds.Covariates != nil {
		files = append(files, struct {
			name  string
			write func(f *os.File) error
		}{"covariates.txt", func(f *os.File) error { return data.WriteCovariates(f, ds.Covariates) }})
	}
	for _, spec := range files {
		path := filepath.Join(*out, spec.name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := spec.write(f); err != nil {
			f.Close()
			fatal(fmt.Errorf("writing %s: %w", path, err))
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
