// Command sparkscore runs a complete SparkScore analysis on the simulated
// cluster: it stages the input files onto the HDFS stand-in, computes the
// observed SKAT statistics, runs the requested resampling method, and prints
// per-set p-values plus the simulated cluster runtime.
//
// Inputs come either from files produced by datagen:
//
//	sparkscore -dir ./dataset -method mc -iterations 1000
//
// or are generated in-process:
//
//	sparkscore -generate -patients 1000 -snps 10000 -sets 100 -method perm -iterations 16
//
// With -eqtl it instead runs the all-pairs association engine: -eqtl-phenos
// generated expression phenotypes crossed with every SNP, reduced to a
// streaming top-K plus a histogram-sketch Benjamini–Hochberg FDR summary. The
// -out report is deterministic (assoc.WriteReport), so two runs — wide or
// per-phenotype loop, broadcast or cartesian, with or without -chaos — can be
// compared byte for byte:
//
//	sparkscore -generate -eqtl -eqtl-phenos 32 -out wide.tsv
//	sparkscore -generate -eqtl -eqtl-phenos 32 -eqtl-wide=false -chaos -out loop.tsv
//	cmp wide.tsv loop.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sparkscore/internal/assoc"
	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

func main() {
	var (
		dir      = flag.String("dir", "", "directory with genotypes.txt/phenotype.txt/weights.txt/snpsets.txt")
		generate = flag.Bool("generate", false, "generate a synthetic dataset instead of reading -dir")
		patients = flag.Int("patients", 1000, "patients for -generate")
		snps     = flag.Int("snps", 10000, "SNPs for -generate")
		sets     = flag.Int("sets", 100, "SNP-sets for -generate")

		method     = flag.String("method", "mc", `resampling method: "mc" (Monte Carlo) or "perm" (permutation)`)
		iterations = flag.Int("iterations", 1000, "resampling iterations (B)")
		family     = flag.String("family", "cox", `score family: "cox", "gaussian", or "binomial"`)
		noCache    = flag.Bool("no-cache", false, "disable caching of the score-contribution RDD")
		columnar   = flag.Bool("columnar", true, "use the 2-bit packed columnar genotype engine (false: boxed per-row pipeline)")
		adaptive   = flag.Bool("adaptive", false, "enable adaptive stage execution (coalesce small reduce partitions, split skewed ones from observed map-output sizes); results are bitwise identical either way")
		chaos      = flag.Bool("chaos", false, "inject task crashes, fetch failures, and stragglers; results are bitwise unchanged")
		setStat    = flag.String("set-stat", "skat", `SNP-set statistic: "skat" or "burden"`)
		betaWts    = flag.Bool("beta-weights", false, "replace input weights with Beta(MAF;1,25) weights (Wu et al. 2011)")
		seed       = flag.Uint64("seed", 1, "seed for data generation and resampling")

		nodes    = flag.Int("nodes", 6, "simulated cluster nodes (m3.2xlarge)")
		execs    = flag.Int("executors-per-node", 2, "YARN containers per node")
		cores    = flag.Int("cores", 4, "cores per container")
		mem      = flag.Float64("mem", 10, "memory per container (GiB)")
		memCap   = flag.Int64("mem-cap-bytes", 0, "absolute per-container memory cap in bytes, overriding -mem (0 = off; squeezes the unified pool so the sort shuffle spills)")
		hashShuf = flag.Bool("hash-shuffle", false, "use the legacy hash shuffle (resident buckets, no spill path) instead of the sort shuffle")
		workers  = flag.Int("workers", 0, "host-side worker goroutines (0 = all CPUs; 1 makes spill points a pure function of the configuration)")
		top      = flag.Int("top", 10, "print the top N SNP-sets by p-value")
		marginal = flag.Bool("marginal", false, "also run the per-SNP asymptotic analysis")
		setAsym  = flag.Bool("asymptotic", false, "also run the per-set asymptotic (Liu) analysis")
		out      = flag.String("out", "", "write the per-set result table (TSV) to this file")

		eqtlMode     = flag.Bool("eqtl", false, "run the all-pairs eQTL engine instead of the SKAT pipeline")
		eqtlPhenos   = flag.Int("eqtl-phenos", 32, "expression phenotypes to generate for -eqtl")
		eqtlTop      = flag.Int("eqtl-top", 100, "most-significant pairs to keep for -eqtl")
		eqtlStrategy = flag.String("eqtl-strategy", "auto", `join strategy for -eqtl: "auto", "broadcast", or "cartesian"`)
		eqtlWide     = flag.Bool("eqtl-wide", true, "use the wide multi-phenotype kernel (false: per-phenotype loop; results are bitwise identical)")

		eventsOut = flag.String("events", "", "write a JSONL event log to this file (render it with sparkui)")
		traceOut  = flag.String("trace", "", "write a Chrome-trace timeline to this file (open in chrome://tracing)")
		progress  = flag.Bool("progress", false, "print job/stage/recovery progress as the analysis runs")
	)
	flag.Parse()

	ds, err := loadDataset(*dir, *generate, *patients, *snps, *sets, *seed)
	if err != nil {
		fatal(err)
	}
	if *betaWts {
		if ds.Weights, err = stats.BetaMAFWeights(ds.Genotypes, 1, 25); err != nil {
			fatal(err)
		}
	}
	var listeners []rdd.Listener
	var eventLog *rdd.EventLogWriter
	var eventFile *os.File
	if *eventsOut != "" {
		eventFile, err = os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		eventLog = rdd.NewEventLogWriter(eventFile)
		listeners = append(listeners, eventLog)
	}
	var timeline *rdd.TimelineListener
	if *traceOut != "" {
		timeline = rdd.NewTimelineListener()
		listeners = append(listeners, timeline)
	}
	if *progress {
		listeners = append(listeners, &rdd.ConsoleProgressListener{})
	}
	memGiB := *mem
	if *memCap > 0 {
		memGiB = float64(*memCap) / float64(1<<30)
	}
	shuffle := rdd.ShuffleSort
	if *hashShuf {
		shuffle = rdd.ShuffleHash
	}
	var faults rdd.FaultProfile
	if *chaos {
		faults = rdd.FaultProfile{TaskCrashProb: 0.05, FetchFailureProb: 0.05, StragglerProb: 0.05}
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes: *nodes, Spec: cluster.M3TwoXLarge,
			ExecutorsPerNode: *execs, CoresPerExecutor: *cores, MemPerExecutorGiB: memGiB,
		},
		Seed:        *seed,
		Faults:      faults,
		SortShuffle: shuffle,
		Workers:     *workers,
		Adaptive:    rdd.AdaptiveConfig{Enabled: *adaptive},
		Listeners:   listeners,
	})
	if err != nil {
		fatal(err)
	}
	if *eqtlMode {
		err := runEQTL(ctx, ds, eqtlOptions{
			phenos: *eqtlPhenos, topK: *eqtlTop, strategy: *eqtlStrategy,
			wide: *eqtlWide, seed: *seed, top: *top, out: *out,
		})
		if err != nil {
			fatal(err)
		}
		finishRun(ctx, eventLog, eventFile, timeline, *eventsOut, *traceOut)
		return
	}
	paths, err := core.StageDataset(ctx, ds, "input")
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Family: *family, SetStatistic: *setStat, Seed: *seed}.WithColumnar(*columnar)
	if *noCache {
		opts = opts.WithoutCache()
	}
	analysis, err := core.NewAnalysis(ctx, paths, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("sparkscore: %d patients, %d SNPs, %d SNP-sets on %d nodes (%dx%d cores, %g GiB)\n",
		ds.Phenotype.Patients(), ds.Genotypes.SNPs(), len(ds.SNPSets),
		*nodes, *execs, *cores, memGiB)

	var res *core.Result
	switch *method {
	case "mc":
		res, err = analysis.MonteCarlo(*iterations)
	case "perm":
		res, err = analysis.Permutation(*iterations)
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	if err != nil {
		fatal(err)
	}

	printResult(res, *top)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := core.WriteResult(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	if *setAsym {
		if err := printSetAsymptotic(analysis, *top); err != nil {
			fatal(err)
		}
	}
	if *marginal {
		if err := printMarginal(analysis, *top); err != nil {
			fatal(err)
		}
	}
	finishRun(ctx, eventLog, eventFile, timeline, *eventsOut, *traceOut)
}

// finishRun prints the simulated-cluster accounting and flushes the optional
// event log and Chrome trace — the shared tail of every sparkscore mode.
func finishRun(ctx *rdd.Context, eventLog *rdd.EventLogWriter, eventFile *os.File, timeline *rdd.TimelineListener, eventsOut, traceOut string) {
	fmt.Printf("\nsimulated cluster time: %.1f s over %d jobs\n", ctx.VirtualTime(), len(ctx.Jobs()))
	var spilledBytes int64
	var spillCount int
	for _, m := range ctx.Jobs() {
		spilledBytes += m.SpilledBytes
		spillCount += m.SpillCount
	}
	if spillCount > 0 {
		fmt.Printf("shuffle spills: %d sorted runs, %d bytes\n", spillCount, spilledBytes)
	}

	if eventLog != nil {
		if err := eventLog.Close(); err != nil {
			fatal(err)
		}
		if err := eventFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote event log %s (render with: sparkui -log %s)\n", eventsOut, eventsOut)
	}
	if timeline != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := timeline.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote timeline %s (open in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
}

type eqtlOptions struct {
	phenos   int
	topK     int
	strategy string
	wide     bool
	seed     uint64
	top      int
	out      string
}

// runEQTL stages the genotypes beside a generated expression matrix, runs the
// all-pairs cross, prints the most significant pairs, and writes the
// deterministic report when -out is set.
func runEQTL(ctx *rdd.Context, ds *data.Dataset, o eqtlOptions) error {
	expr := gen.ExpressionMatrix(gen.Config{Patients: ds.Phenotype.Patients()}, rng.New(o.seed), o.phenos)
	paths, err := assoc.Stage(ctx, ds.Genotypes, expr, "eqtl")
	if err != nil {
		return err
	}
	cfg := assoc.Config{TopK: o.topK, Strategy: o.strategy}.WithWide(o.wide)
	a, err := assoc.NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, cfg)
	if err != nil {
		return err
	}
	kernel := "wide"
	if !o.wide {
		kernel = "loop"
	}
	fmt.Printf("all-pairs: %d SNPs × %d phenotypes (%s strategy, %s kernel)\n",
		ds.Genotypes.SNPs(), a.Phenos(), a.Strategy(), kernel)
	res, err := a.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\n%d pair tests; BH FDR at α=%g: threshold %.4g, %d discoveries\n",
		res.Tested, res.FDR.Alpha, res.FDR.Threshold, res.FDR.Discoveries)
	top := o.top
	if top > len(res.TopK) {
		top = len(res.TopK)
	}
	fmt.Printf("top %d pairs:\n", top)
	fmt.Printf("%-8s %-8s %12s %12s %10s\n", "snp", "pheno", "score", "variance", "p-value")
	for _, p := range res.TopK[:top] {
		fmt.Printf("%-8d %-8d %12.4f %12.4f %10.4g\n", p.SNP, p.Pheno, p.Score, p.Variance, p.PValue)
	}
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		if err := assoc.WriteReport(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", o.out)
	}
	return nil
}

func loadDataset(dir string, generate bool, patients, snps, sets int, seed uint64) (*data.Dataset, error) {
	if generate || dir == "" {
		return gen.Generate(gen.Config{Patients: patients, SNPs: snps, SNPSets: sets}, seed)
	}
	open := func(name string) (*os.File, error) { return os.Open(filepath.Join(dir, name)) }
	ds := &data.Dataset{}
	var err error
	load := func(name string, read func(f *os.File) error) {
		if err != nil {
			return
		}
		var f *os.File
		if f, err = open(name); err != nil {
			return
		}
		defer f.Close()
		err = read(f)
	}
	load("genotypes.txt", func(f *os.File) (e error) { ds.Genotypes, e = data.ReadGenotypes(f); return })
	load("phenotype.txt", func(f *os.File) (e error) { ds.Phenotype, e = data.ReadPhenotype(f); return })
	load("weights.txt", func(f *os.File) (e error) { ds.Weights, e = data.ReadWeights(f); return })
	load("snpsets.txt", func(f *os.File) (e error) { ds.SNPSets, e = data.ReadSNPSets(f); return })
	if err != nil {
		return nil, err
	}
	// Covariates are optional: adjust the analysis when the file exists.
	if f, cerr := open("covariates.txt"); cerr == nil {
		ds.Covariates, err = data.ReadCovariates(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return ds, ds.Validate()
}

func printResult(res *core.Result, top int) {
	type row struct {
		name string
		s0   float64
		p    float64
	}
	rows := make([]row, len(res.Observed))
	for k := range rows {
		rows[k] = row{name: res.Sets[k].Name, s0: res.Observed[k]}
		if res.PValues != nil {
			rows[k].p = res.PValues[k]
		}
	}
	if res.PValues != nil {
		sort.Slice(rows, func(i, j int) bool { return rows[i].p < rows[j].p })
	} else {
		sort.Slice(rows, func(i, j int) bool { return rows[i].s0 > rows[j].s0 })
	}
	if top > len(rows) {
		top = len(rows)
	}
	fmt.Printf("\n%d resampling iterations; top %d SNP-sets:\n", res.Iterations, top)
	fmt.Printf("%-16s %14s %10s\n", "snp-set", "observed-skat", "p-value")
	for _, r := range rows[:top] {
		p := "n/a"
		if res.PValues != nil {
			p = fmt.Sprintf("%.4g", r.p)
		}
		fmt.Printf("%-16s %14.4f %10s\n", r.name, r.s0, p)
	}
}

func printSetAsymptotic(a *core.Analysis, top int) error {
	results, err := a.SetAsymptotic()
	if err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].PValue < results[j].PValue })
	if top > len(results) {
		top = len(results)
	}
	fmt.Printf("\ntop %d SNP-sets by asymptotic (Liu) test:\n", top)
	fmt.Printf("%-16s %6s %14s %10s\n", "snp-set", "snps", "observed", "p-value")
	for _, r := range results[:top] {
		fmt.Printf("%-16s %6d %14.4f %10.4g\n", r.Name, r.SNPs, r.Observed, r.PValue)
	}
	return nil
}

func printMarginal(a *core.Analysis, top int) error {
	results, err := a.MarginalAsymptotic()
	if err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].PValue < results[j].PValue })
	if top > len(results) {
		top = len(results)
	}
	fmt.Printf("\ntop %d SNPs by asymptotic score test:\n", top)
	fmt.Printf("%-8s %12s %12s %10s\n", "snp", "score", "variance", "p-value")
	for _, r := range results[:top] {
		fmt.Printf("%-8d %12.4f %12.4f %10.4g\n", r.SNP, r.Score, r.Variance, r.PValue)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparkscore:", err)
	os.Exit(1)
}
