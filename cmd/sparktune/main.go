// Command sparktune searches the YARN container parameter space (executors
// per node × cores × memory — the run-time flags of the paper's auto-tuning
// investigation) for the layout that minimises the simulated runtime of a
// representative SparkScore workload:
//
//	sparktune -patients 1000 -snps 100000 -sets 1000 -nodes 6 -iterations 100
//
// Candidates are scored on the discrete-event cluster model, so the sweep
// costs seconds instead of cluster-hours.
//
// With -online the offline sweep is replaced by the feedback loop: one
// long-lived context runs -batches Monte Carlo batches while the online
// controller folds stage times into its EWMA and retunes default parallelism
// between batches, printing the adaptation trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/gen"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
	"sparkscore/internal/tuner"
)

func main() {
	var (
		patients   = flag.Int("patients", 1000, "patients in the representative workload")
		snps       = flag.Int("snps", 10000, "SNPs in the representative workload")
		sets       = flag.Int("sets", 100, "SNP-sets in the representative workload")
		nodes      = flag.Int("nodes", 6, "cluster nodes (m3.2xlarge)")
		iterations = flag.Int("iterations", 100, "Monte Carlo iterations in the scored job")
		family     = flag.String("family", "cox", "score family")
		scale      = flag.Int("scale", 1, "divide block size and scheduling overheads by this when the workload is a scaled stand-in")
		seed       = flag.Uint64("seed", 1, "seed")
		online     = flag.Bool("online", false, "run the online tuner demo instead of the offline grid sweep")
		batches    = flag.Int("batches", 8, "Monte Carlo batches between retunes for -online")
	)
	flag.Parse()

	ds, err := gen.Generate(gen.Config{Patients: *patients, SNPs: *snps, SNPSets: *sets}, *seed)
	if err != nil {
		fatal(err)
	}
	w := tuner.Workload{
		Dataset:    ds,
		Family:     *family,
		Iterations: *iterations,
		Nodes:      *nodes,
		Seed:       *seed,
	}
	if *scale > 1 {
		s := float64(*scale)
		w.DFSBlockSize = int(float64(128<<20) / s)
		w.SchedOverheadSec = 0.004 / s
		w.StageOverheadSec = 0.05 / s
	}
	if *online {
		if err := runOnline(w, *batches); err != nil {
			fatal(err)
		}
		return
	}
	candidates := tuner.Grid(cluster.M3TwoXLarge)
	fmt.Printf("sparktune: scoring %d container layouts on %d nodes (%d SNPs x %d patients, %d iterations)\n\n",
		len(candidates), *nodes, *snps, *patients, *iterations)

	evals, err := tuner.Tune(w, candidates)
	if err != nil {
		fatal(err)
	}
	t := metrics.NewTable("ranked container layouts", "rank", "layout", "sim-time (s)", "note")
	for i, e := range evals {
		note := ""
		if i == 0 {
			note = "<== best"
		}
		if e.Err != nil {
			t.AddRowf(i+1, e.Candidate.String(), "N/A", "infeasible: "+e.Err.Error())
			continue
		}
		t.AddRowf(i+1, e.Candidate.String(), e.SimSeconds, note)
	}
	t.Fprint(os.Stdout)
}

// runOnline demos the feedback loop: one context, -batches Monte Carlo
// batches, a Retune between each, and the resulting adaptation trace.
func runOnline(w tuner.Workload, batches int) error {
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes: w.Nodes, Spec: cluster.M3TwoXLarge,
			ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 10,
		},
		DFSBlockSize:     w.DFSBlockSize,
		SchedOverheadSec: w.SchedOverheadSec,
		StageOverheadSec: w.StageOverheadSec,
		Seed:             w.Seed,
	})
	if err != nil {
		return err
	}
	o := tuner.NewOnline(ctx, tuner.OnlineConfig{})
	paths, err := core.StageDataset(ctx, w.Dataset, "tune")
	if err != nil {
		return err
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Family: w.Family, Seed: w.Seed})
	if err != nil {
		return err
	}
	fmt.Printf("sparktune: online mode, %d batches x %d iterations on %d nodes (initial parallelism %d)\n\n",
		batches, w.Iterations, w.Nodes, ctx.DefaultParallelism())
	t := metrics.NewTable("online tuner trace", "batch", "sim-s", "ewma-wave-s", "parallelism", "retuned")
	for i := 0; i < batches; i++ {
		before := ctx.VirtualTime()
		if _, err := a.MonteCarlo(w.Iterations); err != nil {
			return err
		}
		p, changed := o.Retune()
		st := o.Stats()
		note := ""
		if changed {
			note = "yes"
		}
		t.AddRowf(i+1, metrics.FormatSeconds(ctx.VirtualTime()-before),
			metrics.FormatSeconds(st.EWMAWaveSeconds), p, note)
	}
	t.Fprint(os.Stdout)
	st := o.Stats()
	fmt.Printf("\nonline: %d stages observed, %d retunes, final parallelism %d\n",
		st.Stages, st.Retunes, st.Parallelism)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparktune:", err)
	os.Exit(1)
}
