// Command sparktune searches the YARN container parameter space (executors
// per node × cores × memory — the run-time flags of the paper's auto-tuning
// investigation) for the layout that minimises the simulated runtime of a
// representative SparkScore workload:
//
//	sparktune -patients 1000 -snps 100000 -sets 1000 -nodes 6 -iterations 100
//
// Candidates are scored on the discrete-event cluster model, so the sweep
// costs seconds instead of cluster-hours.
package main

import (
	"flag"
	"fmt"
	"os"

	"sparkscore/internal/cluster"
	"sparkscore/internal/gen"
	"sparkscore/internal/metrics"
	"sparkscore/internal/tuner"
)

func main() {
	var (
		patients   = flag.Int("patients", 1000, "patients in the representative workload")
		snps       = flag.Int("snps", 10000, "SNPs in the representative workload")
		sets       = flag.Int("sets", 100, "SNP-sets in the representative workload")
		nodes      = flag.Int("nodes", 6, "cluster nodes (m3.2xlarge)")
		iterations = flag.Int("iterations", 100, "Monte Carlo iterations in the scored job")
		family     = flag.String("family", "cox", "score family")
		scale      = flag.Int("scale", 1, "divide block size and scheduling overheads by this when the workload is a scaled stand-in")
		seed       = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	ds, err := gen.Generate(gen.Config{Patients: *patients, SNPs: *snps, SNPSets: *sets}, *seed)
	if err != nil {
		fatal(err)
	}
	w := tuner.Workload{
		Dataset:    ds,
		Family:     *family,
		Iterations: *iterations,
		Nodes:      *nodes,
		Seed:       *seed,
	}
	if *scale > 1 {
		s := float64(*scale)
		w.DFSBlockSize = int(float64(128<<20) / s)
		w.SchedOverheadSec = 0.004 / s
		w.StageOverheadSec = 0.05 / s
	}
	candidates := tuner.Grid(cluster.M3TwoXLarge)
	fmt.Printf("sparktune: scoring %d container layouts on %d nodes (%d SNPs x %d patients, %d iterations)\n\n",
		len(candidates), *nodes, *snps, *patients, *iterations)

	evals, err := tuner.Tune(w, candidates)
	if err != nil {
		fatal(err)
	}
	t := metrics.NewTable("ranked container layouts", "rank", "layout", "sim-time (s)", "note")
	for i, e := range evals {
		note := ""
		if i == 0 {
			note = "<== best"
		}
		if e.Err != nil {
			t.AddRowf(i+1, e.Candidate.String(), "N/A", "infeasible: "+e.Err.Error())
			continue
		}
		t.AddRowf(i+1, e.Candidate.String(), e.SimSeconds, note)
	}
	t.Fprint(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparktune:", err)
	os.Exit(1)
}
