// Fault tolerance: the paper's second selling point for Spark ("this
// computational approach also harnesses the fault-tolerant features of
// Spark"). RDD lineage means a failed executor loses only its cached blocks,
// never correctness: lost partitions of the cached score-contribution RDD
// are recomputed from the genotype file on demand.
//
// The example runs the same Monte Carlo analysis twice on identical data:
// undisturbed, and with half of the executors failing mid-run — after the
// U RDD has been computed and cached, so real cached state is lost. The
// exceedance counts are bit-identical; the cached-byte counters show the
// blocks vanishing and being rebuilt elsewhere.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
)

const iterations = 150

func main() {
	ds, err := gen.Generate(gen.Config{Patients: 400, SNPs: 6000, SNPSets: 40}, 31)
	if err != nil {
		log.Fatal(err)
	}

	baseline, _, baseTime := run(ds, false)
	disturbed, report, failTime := run(ds, true)

	fmt.Printf("fault tolerance: %d Monte Carlo iterations on identical data\n\n", iterations)
	fmt.Printf("%-30s %14s %12s\n", "scenario", "sim-time (s)", "results")
	fmt.Printf("%-30s %14.1f %12s\n", "no failures", baseTime, "baseline")
	fmt.Printf("%-30s %14.1f %12s\n", "half the executors killed", failTime, compare(baseline, disturbed))
	fmt.Println()
	fmt.Println(report)
	fmt.Println("exceedance counts are identical: lineage recomputation rebuilds lost")
	fmt.Println("cached partitions deterministically from the genotype file.")
}

// run executes the analysis; when failHalf is set, half of the executors are
// killed after 120 completed tasks — well after the cached U RDD has been
// materialised — and a report of the lost cache is returned.
func run(ds *data.Dataset, failHalf bool) (*core.Result, string, float64) {
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		Seed:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "ft")
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Family: "cox", Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	report := ""
	if failHalf {
		// Phase 1: materialise and cache RDD U across the executors.
		if err := a.Warm(); err != nil {
			log.Fatal(err)
		}
		before := ctx.CachedBytes()
		live := ctx.Cluster().LiveExecutors()
		for _, id := range live[:len(live)/2] {
			if err := ctx.FailExecutor(id); err != nil {
				log.Fatal(err)
			}
		}
		after := ctx.CachedBytes()
		report = fmt.Sprintf("cached bytes before failure: %d\ncached bytes after killing %d executors: %d (lost blocks recomputed on demand)\n",
			before, len(live)/2, after)
	}

	res, err := a.MonteCarlo(iterations)
	if err != nil {
		log.Fatal(err)
	}
	return res, report, ctx.VirtualTime()
}

func compare(a, b *core.Result) string {
	for k := range a.Exceed {
		if a.Exceed[k] != b.Exceed[k] {
			return "DIVERGED"
		}
	}
	return "identical"
}
