// Fault tolerance: the paper's second selling point for Spark ("this
// computational approach also harnesses the fault-tolerant features of
// Spark"). RDD lineage means failures cost time, never correctness: lost
// cached partitions recompute from the genotype file, lost shuffle outputs
// trigger a map-stage resubmission, and crashed task attempts are retried —
// all without changing a single number of the inference.
//
// The example runs the same Monte Carlo analysis three times on identical
// data:
//
//  1. undisturbed — the baseline;
//
//  2. under chaos — a whole machine is killed mid-analysis (taking its
//     executors, cached blocks, shuffle outputs, and HDFS replicas with it)
//     while every task attempt has a 2% chance of crashing and every shuffle
//     read a 2% chance of losing a map output;
//
//  3. the same chaos again — byte-identical recovery, because every injected
//     fault is a pure function of the configuration seed.
//
// Run it with:
//
//	go run ./examples/faulttolerance
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

const iterations = 150

// chaos is the fault profile of the disturbed runs: scheduled loss of node 0
// early in the analysis, plus background task crashes and fetch failures.
var chaos = rdd.FaultProfile{
	TaskCrashProb:    0.02,
	FetchFailureProb: 0.02,
	NodeLoss:         []rdd.NodeLoss{{Node: 0, AfterTasks: 40}},
}

func main() {
	ds, err := gen.Generate(gen.Config{Patients: 400, SNPs: 6000, SNPSets: 40}, 31)
	if err != nil {
		log.Fatal(err)
	}

	baseline := run(ds, rdd.FaultProfile{})

	// The disturbed run narrates its own recovery through the engine's
	// console progress listener (RecoveryOnly: routine job/stage progress is
	// suppressed, only failures, retries, resubmissions, exclusions, and the
	// node loss print) — the bus does the reporting, not hand-rolled hooks.
	fmt.Println("live recovery feed of the disturbed run:")
	disturbed := run(ds, chaos, &rdd.ConsoleProgressListener{W: os.Stdout, RecoveryOnly: true})
	fmt.Println()

	replay := run(ds, chaos)

	fmt.Printf("fault tolerance: %d Monte Carlo iterations on identical data\n\n", iterations)
	fmt.Printf("%-34s %14s %12s\n", "scenario", "sim-time (s)", "results")
	fmt.Printf("%-34s %14.1f %12s\n", "no failures", baseline.simTime, "baseline")
	fmt.Printf("%-34s %14.1f %12s\n", "node killed + 2%/2% chaos", disturbed.simTime, compare(baseline.res, disturbed.res))
	fmt.Printf("%-34s %14.1f %12s\n", "same chaos, fresh cluster", replay.simTime, compare(baseline.res, replay.res))
	fmt.Println()

	fmt.Printf("cached bytes before node loss: %d, after: %d (lost blocks recompute on demand)\n",
		disturbed.cachedBefore, disturbed.cachedAfter)
	fmt.Printf("recovery work under chaos: %d task retries, %d stage re-attempts, %d recomputed map partitions\n",
		disturbed.stats.TaskRetries, disturbed.stats.StageAttempts, disturbed.stats.RecomputedPartitions)
	fmt.Printf("recovery share of runtime: %s (%.1f of %.1f sim-s)\n",
		metrics.FormatPercent(disturbed.stats.Overhead()), disturbed.stats.RecoverySeconds, disturbed.simTime)
	fmt.Println()

	if disturbed.fingerprint == replay.fingerprint {
		fmt.Println("replaying the chaos run reproduced the full event log byte for byte")
		fmt.Println("(timestamps stripped): every injected fault is a pure function of the")
		fmt.Println("configuration seed.")
	} else {
		fmt.Println("WARNING: chaos replay diverged — fault injection is not deterministic")
	}
	fmt.Println()
	fmt.Println("exceedance counts are identical across all three runs: lineage")
	fmt.Println("recomputation and stage resubmission rebuild lost state deterministically.")
}

// outcome is one full analysis run with its recovery accounting. The
// fingerprint is the run's entire event log with measured-time fields
// stripped — a much stronger determinism witness than the per-job metrics
// alone, since it pins every task attempt, fault, and recovery action.
type outcome struct {
	res          *core.Result
	simTime      float64
	stats        rdd.RecoveryStats
	fingerprint  string
	cachedBefore int64
	cachedAfter  int64
}

func run(ds *data.Dataset, faults rdd.FaultProfile, extra ...rdd.Listener) outcome {
	var logBuf bytes.Buffer
	elw := rdd.NewEventLogWriter(&logBuf)
	ctx, err := rdd.New(rdd.Config{
		Cluster:   cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		Seed:      4,
		Faults:    faults,
		Listeners: append([]rdd.Listener{elw}, extra...),
	})
	if err != nil {
		log.Fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "ft")
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Family: "cox", Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	// Materialise and cache RDD U before the chaos starts, so the scheduled
	// node loss destroys real cached state, real shuffle outputs, and real
	// HDFS replicas mid-analysis.
	if err := a.Warm(); err != nil {
		log.Fatal(err)
	}
	o := outcome{cachedBefore: ctx.CachedBytes()}

	o.res, err = a.MonteCarlo(iterations)
	if err != nil {
		log.Fatal(err)
	}
	o.simTime = ctx.VirtualTime()
	o.cachedAfter = ctx.CachedBytes()
	o.stats = rdd.SummarizeRecovery(ctx.Jobs())
	if err := elw.Close(); err != nil {
		log.Fatal(err)
	}
	o.fingerprint = strippedEventLog(logBuf.Bytes())
	return o
}

// strippedEventLog re-renders a JSONL event log with every measured-time
// field zeroed, leaving only the reproducible structure of the run.
func strippedEventLog(raw []byte) string {
	events, err := rdd.ReadEventLog(bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	var sb bytes.Buffer
	for _, ev := range events {
		line, err := rdd.MarshalEvent(rdd.StripMeasuredTime(ev))
		if err != nil {
			log.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func compare(a, b *core.Result) string {
	for k := range a.Exceed {
		if a.Exceed[k] != b.Exceed[k] {
			return "DIVERGED"
		}
	}
	return "identical"
}
