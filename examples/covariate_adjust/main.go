// Covariate adjustment — the capability the paper credits to the efficient
// score method and to Lin's Monte Carlo resampling in particular ("it allows
// for incorporation of baseline covariates in the analysis").
//
// The simulation builds a classic confounded study: a baseline covariate
// (think ancestry or age) shifts both the allele frequencies of one SNP-set
// and the survival hazard. Unadjusted, that set looks strongly associated;
// adjusted for the covariate, the false signal disappears — while a truly
// causal set stays significant in both analyses.
//
// Note that only the Monte Carlo method supports this: shuffling outcomes
// for permutation resampling would break the covariate-outcome link too
// (the library refuses the combination).
//
//	go run ./examples/covariate_adjust
package main

import (
	"fmt"
	"log"
	"math"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
)

const (
	patients     = 600
	snps         = 1200
	sets         = 30
	confoundedK  = 5  // set whose SNPs track the confounder
	causalK      = 21 // set with a real effect
	iterations   = 400
	confounderHR = 0.9 // log hazard ratio per confounder unit
	causalHR     = 0.4 // log hazard ratio per causal allele
)

func main() {
	ds, cov := buildStudy()

	unadjusted := analyse(ds, nil)
	adjusted := analyse(ds, cov)

	fmt.Printf("covariate adjustment: %d patients, %d SNPs, %d sets, %d MC iterations\n", patients, snps, sets, iterations)
	fmt.Printf("set%-2d is confounded (no real effect); set%-2d is causal\n\n", confoundedK, causalK)
	fmt.Printf("%-10s %14s %14s %s\n", "snp-set", "unadjusted-p", "adjusted-p", "verdict")
	for _, k := range []int{confoundedK, causalK} {
		verdict := "spurious signal removed by adjustment"
		if k == causalK {
			verdict = "real signal survives adjustment"
		}
		fmt.Printf("set%-7d %14.4f %14.4f %s\n", k, unadjusted.PValues[k], adjusted.PValues[k], verdict)
	}

	if unadjusted.PValues[confoundedK] < 0.05 && adjusted.PValues[confoundedK] > 0.05 {
		fmt.Println("\nconfounded set: significant before adjustment, null after — as constructed.")
	}

	// Permutation must refuse the covariate-adjusted analysis.
	ctx := newCluster()
	staged, err := core.StageDataset(ctx, withCovariates(ds, cov), "adjperm")
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.NewAnalysis(ctx, staged, core.Options{Family: "cox", Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := a.Permutation(4); err != nil {
		fmt.Printf("\npermutation with covariates correctly refused:\n  %v\n", err)
	}
}

func newCluster() *rdd.Context {
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge},
		Seed:    9,
	})
	if err != nil {
		log.Fatal(err)
	}
	return ctx
}

// buildStudy simulates the confounded cohort.
func buildStudy() (*data.Dataset, *data.Covariates) {
	ds, err := gen.Generate(gen.Config{Patients: patients, SNPs: snps, SNPSets: sets}, 41)
	if err != nil {
		log.Fatal(err)
	}
	r := rng.New(42)
	conf := make([]float64, patients)
	for i := range conf {
		conf[i] = r.Normal()
	}
	// Confounded set: redraw its SNPs with allele frequency tied to conf.
	for _, j := range ds.SNPSets[confoundedK].SNPs {
		row := ds.Genotypes.Row(j)
		for i := range row {
			p := 0.15 + 0.25/(1+math.Exp(-1.5*conf[i]))
			row[i] = data.Genotype(r.Binomial(2, p))
		}
	}
	// Causal burden from the causal set.
	burden := make([]float64, patients)
	for _, j := range ds.SNPSets[causalK].SNPs {
		row := ds.Genotypes.Row(j)
		for i, g := range row {
			burden[i] += float64(g)
		}
	}
	// Hazard depends on the confounder and the causal burden — never on the
	// confounded set's genotypes directly.
	for i := range ds.Phenotype.Y {
		rate := math.Exp(confounderHR*conf[i]+causalHR*burden[i]) / 12
		ds.Phenotype.Y[i] = r.Exponential(rate)
		if r.Bernoulli(0.85) {
			ds.Phenotype.Event[i] = 1
		} else {
			ds.Phenotype.Event[i] = 0
		}
	}
	rows := make([][]float64, patients)
	for i := range rows {
		rows[i] = []float64{conf[i]}
	}
	return ds, &data.Covariates{Rows: rows}
}

func withCovariates(ds *data.Dataset, cov *data.Covariates) *data.Dataset {
	out := *ds
	out.Covariates = cov
	return &out
}

func analyse(ds *data.Dataset, cov *data.Covariates) *core.Result {
	ctx := newCluster()
	use := ds
	if cov != nil {
		use = withCovariates(ds, cov)
	}
	paths, err := core.StageDataset(ctx, use, "adj")
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Family: "cox", Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.MonteCarlo(iterations)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
