// Quickstart: the smallest end-to-end SparkScore run.
//
// It generates a synthetic GWAS dataset (Section III of the paper), stages
// it on the simulated HDFS, computes observed SKAT statistics, estimates
// their sampling distribution with 1000 Monte Carlo resamplings (Lin 2005),
// and prints the most significant SNP-sets together with the simulated
// cluster runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
)

func main() {
	// 1. A driver context over a simulated 6-node EMR cluster.
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{Nodes: 6, Spec: cluster.M3TwoXLarge},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Synthetic inputs: 500 patients, 2000 SNPs in 50 gene-level sets.
	ds, err := gen.Generate(gen.Config{Patients: 500, SNPs: 2000, SNPSets: 50}, 42)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// 3. A Cox-score analysis with Monte Carlo resampling.
	analysis, err := core.NewAnalysis(ctx, paths, core.Options{Family: "cox", Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	result, err := analysis.MonteCarlo(1000)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	order := make([]int, len(result.Observed))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return result.PValues[order[a]] < result.PValues[order[b]] })
	fmt.Printf("quickstart: %d SNP-sets, %d Monte Carlo iterations\n\n", len(result.Observed), result.Iterations)
	fmt.Printf("%-10s %14s %10s\n", "snp-set", "observed-skat", "p-value")
	for _, k := range order[:5] {
		fmt.Printf("%-10s %14.2f %10.4f\n", result.Sets[k].Name, result.Observed[k], result.PValues[k])
	}
	fmt.Printf("\nsimulated 6-node cluster time: %.1f s\n", ctx.VirtualTime())
}
