// Quickstart: the smallest end-to-end SparkScore run.
//
// It generates a synthetic GWAS dataset (Section III of the paper), stages
// it on the simulated HDFS, computes observed SKAT statistics, estimates
// their sampling distribution with 1000 Monte Carlo resamplings (Lin 2005),
// and prints the most significant SNP-sets together with the simulated
// cluster runtime.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -trace quickstart.trace.json   # timeline for chrome://tracing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome-trace timeline of the run to this file")
	flag.Parse()

	// 1. A driver context over a simulated 6-node EMR cluster, optionally
	// with a timeline listener recording virtual-time task spans.
	var listeners []rdd.Listener
	var timeline *rdd.TimelineListener
	if *traceOut != "" {
		timeline = rdd.NewTimelineListener()
		listeners = append(listeners, timeline)
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster:   cluster.Config{Nodes: 6, Spec: cluster.M3TwoXLarge},
		Seed:      1,
		Listeners: listeners,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Synthetic inputs: 500 patients, 2000 SNPs in 50 gene-level sets.
	ds, err := gen.Generate(gen.Config{Patients: 500, SNPs: 2000, SNPSets: 50}, 42)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// 3. A Cox-score analysis with Monte Carlo resampling.
	analysis, err := core.NewAnalysis(ctx, paths, core.Options{Family: "cox", Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	result, err := analysis.MonteCarlo(1000)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	order := make([]int, len(result.Observed))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return result.PValues[order[a]] < result.PValues[order[b]] })
	fmt.Printf("quickstart: %d SNP-sets, %d Monte Carlo iterations\n\n", len(result.Observed), result.Iterations)
	fmt.Printf("%-10s %14s %10s\n", "snp-set", "observed-skat", "p-value")
	for _, k := range order[:5] {
		fmt.Printf("%-10s %14.2f %10.4f\n", result.Sets[k].Name, result.Observed[k], result.PValues[k])
	}
	fmt.Printf("\nsimulated 6-node cluster time: %.1f s\n", ctx.VirtualTime())

	if timeline != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := timeline.WriteChromeTrace(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
}
