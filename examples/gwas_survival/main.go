// GWAS with a censored survival phenotype — the paper's motivating workload
// (time to death following start of treatment in a clinical trial).
//
// Unlike the quickstart, this example plants real signal: the hazard of the
// patients depends on their genotypes at the SNPs of two chosen "causal"
// gene sets (log hazard ratio 0.5 per minor allele). It then runs both
// resampling methods of the paper on the same data and shows that
//
//   - both recover the causal sets at the top of the ranking,
//
//   - their p-values agree (they estimate the same sampling distribution),
//
//   - Monte Carlo needs a fraction of the permutation method's cluster time.
//
//     go run ./examples/gwas_survival
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
)

const (
	patients  = 400
	snps      = 8000
	sets      = 30
	causalA   = 3 // indices of the causal SNP-sets
	causalB   = 17
	hazardLog = 0.5 // log hazard ratio per minor allele at causal SNPs
	b         = 300 // resampling iterations
)

func main() {
	ds, err := gen.Generate(gen.Config{Patients: patients, SNPs: snps, SNPSets: sets}, 11)
	if err != nil {
		log.Fatal(err)
	}
	plantSurvivalSignal(ds, []int{causalA, causalB})

	run := func(method string) (*core.Result, float64) {
		ctx, err := rdd.New(rdd.Config{
			Cluster: cluster.Config{Nodes: 6, Spec: cluster.M3TwoXLarge},
			Seed:    3,
		})
		if err != nil {
			log.Fatal(err)
		}
		paths, err := core.StageDataset(ctx, ds, "gwas")
		if err != nil {
			log.Fatal(err)
		}
		a, err := core.NewAnalysis(ctx, paths, core.Options{Family: "cox", Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		var res *core.Result
		if method == "mc" {
			res, err = a.MonteCarlo(b)
		} else {
			res, err = a.Permutation(b)
		}
		if err != nil {
			log.Fatal(err)
		}
		return res, ctx.VirtualTime()
	}

	mc, mcTime := run("mc")
	perm, permTime := run("perm")

	fmt.Printf("GWAS survival analysis: %d patients, %d SNPs, %d sets, %d iterations\n", patients, snps, sets, b)
	fmt.Printf("causal sets planted: set%d, set%d (log HR %.1f per allele)\n\n", causalA, causalB, hazardLog)

	fmt.Printf("%-8s %12s %12s %12s\n", "snp-set", "mc-p", "perm-p", "causal?")
	for _, k := range topSets(mc, 6) {
		causal := ""
		if k == causalA || k == causalB {
			causal = "  <== planted"
		}
		fmt.Printf("%-8s %12.4f %12.4f %s\n", mc.Sets[k].Name, mc.PValues[k], perm.PValues[k], causal)
	}

	var maxDiff float64
	for k := range mc.PValues {
		if d := math.Abs(mc.PValues[k] - perm.PValues[k]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nlargest |mc-p − perm-p| across all sets: %.4f (Monte Carlo error at B=%d: ~%.3f)\n",
		maxDiff, b, 2/math.Sqrt(float64(b)))
	fmt.Printf("simulated cluster time: Monte Carlo %.1f s, permutation %.1f s (%.1fx)\n",
		mcTime, permTime, permTime/mcTime)
}

// plantSurvivalSignal redraws the survival times so the hazard depends on
// the patient's genotypes within the causal sets: T ~ Exp(λ·e^{β·Σg}).
func plantSurvivalSignal(ds *data.Dataset, causal []int) {
	r := rng.New(99)
	burden := make([]float64, ds.Phenotype.Patients())
	for _, k := range causal {
		for _, j := range ds.SNPSets[k].SNPs {
			row := ds.Genotypes.Row(j)
			for i, g := range row {
				burden[i] += float64(g)
			}
		}
	}
	for i := range ds.Phenotype.Y {
		rate := math.Exp(hazardLog*burden[i]) / 12
		ds.Phenotype.Y[i] = r.Exponential(rate)
		if r.Bernoulli(0.85) {
			ds.Phenotype.Event[i] = 1
		} else {
			ds.Phenotype.Event[i] = 0
		}
	}
}

func topSets(res *core.Result, n int) []int {
	order := make([]int, len(res.PValues))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return res.PValues[order[a]] < res.PValues[order[b]] })
	if n > len(order) {
		n = len(order)
	}
	return order[:n]
}
