// Expression quantitative trait loci (eQTL) analysis with the Gaussian score
// family — the extension the paper's conclusion points to ("can be readily
// extended to analysis of DNA and RNA sequencing data, including eQTL ...").
//
// The phenotype is a quantitative gene-expression level; one SNP-set is
// planted with an additive effect. The example contrasts the asymptotic
// chi-squared p-values with the Monte Carlo resampling p-values per SNP-set,
// showing they agree at this sample size while the resampling route makes no
// large-sample assumption.
//
//	go run ./examples/eqtl_gaussian
package main

import (
	"fmt"
	"log"
	"sort"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
)

const (
	patients  = 300
	snps      = 1200
	sets      = 40
	causalSet = 9
	effect    = 0.4 // expression shift per minor allele at causal SNPs
	b         = 800
)

func main() {
	ds, err := gen.Generate(gen.Config{Patients: patients, SNPs: snps, SNPSets: sets}, 21)
	if err != nil {
		log.Fatal(err)
	}
	plantExpressionSignal(ds, causalSet)

	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge},
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "eqtl")
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := core.NewAnalysis(ctx, paths, core.Options{Family: "gaussian", Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	res, err := analysis.MonteCarlo(b)
	if err != nil {
		log.Fatal(err)
	}
	marginal, err := analysis.MarginalAsymptotic()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("eQTL analysis (gaussian score): %d samples, %d SNPs, %d sets\n", patients, snps, sets)
	fmt.Printf("planted effect: set%d, +%.1f expression units per allele\n\n", causalSet, effect)

	order := make([]int, len(res.PValues))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return res.PValues[order[a]] < res.PValues[order[b]] })
	fmt.Printf("top SNP-sets by Monte Carlo p-value (B=%d):\n", b)
	fmt.Printf("%-8s %14s %12s\n", "snp-set", "observed-skat", "mc-p")
	for _, k := range order[:5] {
		marker := ""
		if k == causalSet {
			marker = "  <== planted"
		}
		fmt.Printf("%-8s %14.2f %12.4f%s\n", res.Sets[k].Name, res.Observed[k], res.PValues[k], marker)
	}

	// Per-SNP view: the most significant individual SNPs by asymptotic test,
	// flagged when they fall inside the causal set.
	inCausal := map[int]bool{}
	for _, j := range ds.SNPSets[causalSet].SNPs {
		inCausal[j] = true
	}
	sort.Slice(marginal, func(i, j int) bool { return marginal[i].PValue < marginal[j].PValue })
	fmt.Printf("\ntop SNPs by asymptotic score test:\n")
	fmt.Printf("%-8s %12s %12s\n", "snp", "chi2-p", "in causal set?")
	hits := 0
	for _, m := range marginal[:8] {
		mark := ""
		if inCausal[m.SNP] {
			mark = "yes"
			hits++
		}
		fmt.Printf("%-8d %12.3g %12s\n", m.SNP, m.PValue, mark)
	}
	fmt.Printf("\n%d of the top 8 SNPs lie in the planted set; simulated cluster time %.1f s\n",
		hits, ctx.VirtualTime())
}

// plantExpressionSignal rebuilds the phenotype as a standard-normal
// expression level plus an additive genotype effect at the causal set.
func plantExpressionSignal(ds *data.Dataset, causal int) {
	r := rng.New(77)
	for i := range ds.Phenotype.Y {
		ds.Phenotype.Y[i] = r.Normal()
		ds.Phenotype.Event[i] = 1 // unused by the gaussian family
	}
	for _, j := range ds.SNPSets[causal].SNPs {
		row := ds.Genotypes.Row(j)
		for i, g := range row {
			ds.Phenotype.Y[i] += effect * float64(g)
		}
	}
}
