// All-pairs expression quantitative trait loci (eQTL) analysis — the
// extension the paper's conclusion points to ("can be readily extended to
// analysis of DNA and RNA sequencing data, including eQTL ...").
//
// Every SNP is tested against every expression phenotype through the
// internal/assoc engine: the genotype matrix streams through 2-bit packed
// blocks, the phenotype matrix rides along (broadcast here — it is tiny),
// and each block partition scores all phenotypes in one pass with the wide
// multi-phenotype kernel, reducing to a streaming top-K plus a
// histogram-sketch Benjamini–Hochberg FDR summary.
//
// Three cis-like signals are planted — three (SNP, phenotype) pairs where
// the expression level shifts additively with the minor-allele dosage — and
// the example shows them surfacing at the head of the top-K out of 48,000
// tests, then re-runs the cross with the per-phenotype loop kernel and
// checks the two reports agree byte for byte.
//
//	go run ./examples/eqtl_gaussian
package main

import (
	"bytes"
	"fmt"
	"log"

	"sparkscore/internal/assoc"
	"sparkscore/internal/cluster"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
)

const (
	patients = 400
	snps     = 2000
	phenos   = 24
	effect   = 0.7 // expression shift per minor allele at a planted pair
	topK     = 10

	// histBins is the FDR sketch width. At 48,000 tests a bin edge u must
	// clear u <= alpha*C/48000 to become the BH threshold, so the first bin
	// needs to sit near 1e-6 — a 2^20-wide sketch — for the handful of
	// planted pairs to register as discoveries.
	histBins = 1 << 20
)

// planted are the causal (SNP, phenotype) pairs the engine should recover.
var planted = []struct{ snp, pheno int }{
	{snp: 42, pheno: 3},
	{snp: 777, pheno: 11},
	{snp: 1502, pheno: 20},
}

func main() {
	ds, err := gen.Generate(gen.Config{Patients: patients, SNPs: snps, SNPSets: 4}, 21)
	if err != nil {
		log.Fatal(err)
	}
	expr := gen.ExpressionMatrix(gen.Config{Patients: patients}, rng.New(77), phenos)
	plantSignals(ds.Genotypes, expr)

	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge},
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	paths, err := assoc.Stage(ctx, ds.Genotypes, expr, "eqtl")
	if err != nil {
		log.Fatal(err)
	}
	cfg := assoc.Config{TopK: topK, HistBins: histBins}
	analysis, err := assoc.NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := analysis.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("all-pairs eQTL (gaussian score): %d samples, %d SNPs x %d phenotypes = %d tests (%s strategy)\n",
		patients, snps, phenos, res.Tested, res.Strategy)
	fmt.Printf("planted pairs: ")
	for i, p := range planted {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("snp%d->pheno%d", p.snp, p.pheno)
	}
	fmt.Printf(" (+%.1f expression units per allele)\n\n", effect)

	isPlanted := map[[2]int32]bool{}
	for _, p := range planted {
		isPlanted[[2]int32{int32(p.snp), int32(p.pheno)}] = true
	}
	fmt.Printf("top %d pairs by p-value:\n", topK)
	fmt.Printf("%-8s %-8s %12s %12s\n", "snp", "pheno", "chi2-p", "")
	recovered := 0
	for _, p := range res.TopK {
		marker := ""
		if isPlanted[[2]int32{p.SNP, p.Pheno}] {
			marker = "<== planted"
			recovered++
		}
		fmt.Printf("%-8d %-8d %12.3g %12s\n", p.SNP, p.Pheno, p.PValue, marker)
	}
	fmt.Printf("\nBH-FDR at alpha %.2f (sketch width %d): threshold %.3g, %d discoveries\n",
		res.FDR.Alpha, res.FDR.Bins, res.FDR.Threshold, res.FDR.Discoveries)
	fmt.Printf("%d of %d planted pairs recovered; simulated cluster time %.1f s\n",
		recovered, len(planted), ctx.VirtualTime())

	// The ablation the engine is pinned against: the same cross with the
	// per-phenotype loop kernel must produce a byte-identical report.
	var wideReport, loopReport bytes.Buffer
	if err := assoc.WriteReport(&wideReport, res); err != nil {
		log.Fatal(err)
	}
	loopAnalysis, err := assoc.NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, cfg.WithWide(false))
	if err != nil {
		log.Fatal(err)
	}
	loopRes, err := loopAnalysis.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := assoc.WriteReport(&loopReport, loopRes); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(wideReport.Bytes(), loopReport.Bytes()) {
		log.Fatal("wide kernel and per-phenotype loop reports diverged")
	}
	fmt.Printf("wide kernel vs per-phenotype loop: reports byte-identical (%d bytes)\n", wideReport.Len())
}

// plantSignals adds an additive genotype effect to each planted phenotype:
// expression = N(0,1) background (from gen.ExpressionMatrix) + effect x
// dosage at the causal SNP. Missing genotypes contribute nothing, matching
// the scoring rule.
func plantSignals(geno *data.GenotypeMatrix, expr *data.PhenoMatrix) {
	for _, p := range planted {
		row := expr.Row(p.pheno)
		for i, g := range geno.Row(p.snp) {
			if g > 0 {
				row[i] += effect * float64(g)
			}
		}
	}
}
